package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixture is the floateq testdata package, addressed by import path so
// the tests are independent of the working directory inside the module.
const fixture = "dpml/internal/lint/testdata/src/floateq"

func TestFindingsExitNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-run", "floateq", fixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "floateq: == on floating-point operands") {
		t.Errorf("stdout missing finding text:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("stderr missing finding count: %s", errb.String())
	}
}

func TestJSONGolden(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-run", "floateq", fixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	golden := filepath.Join("testdata", "floateq.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("-json output differs from %s:\n got:\n%s\nwant:\n%s", golden, out.String(), want)
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "dpml/internal/sim"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), `"findings": []`) {
		t.Errorf("clean -json run should emit an empty findings array:\n%s", out.String())
	}
}

func TestCleanExitZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"dpml/internal/sim"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run should print nothing, got:\n%s", out.String())
	}
}

// TestShardCoordinatorWalltimeGlobalrandClean pins the sharded kernel's
// determinism preconditions. The window-barrier coordinator runs real
// goroutines, which makes host-time barrier timeouts and jittered
// backoff the tempting bugs: either would leak wall-clock or global-RNG
// state into the event order and silently break bit-identity across
// -shards. The whole virtual-time path must stay clean under walltime
// and globalrand with zero suppressions — a legitimate new exemption
// belongs in the analyzers' exempt lists with a written rationale, not
// in an inline //dpml:allow.
func TestShardCoordinatorWalltimeGlobalrandClean(t *testing.T) {
	pkgs := []string{
		"dpml/internal/sim",
		"dpml/internal/fabric",
		"dpml/internal/mpi",
		"dpml/internal/core",
	}
	var out, errb bytes.Buffer
	code := run(append([]string{"-run", "walltime,globalrand"}, pkgs...), &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; findings:\n%s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("virtual-time path has walltime/globalrand findings:\n%s", out.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"walltime", "globalrand", "maprange", "spanpair", "waitcheck", "floateq",
		"prio", "taintflow", "lpown", "sendpath"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestSuppressionsTable audits the //dpml:allow budget: every site in
// the requested packages appears as file:line, analyzer, reason —
// including malformed ones, which show up with placeholder columns
// instead of vanishing.
func TestSuppressionsTable(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-suppressions", "dpml/internal/lint/testdata/src/suppress"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, part := range []string{
		"internal/lint/testdata/src/suppress/suppress.go:7\tfloateq\toracle: exactness is the point here",
		"speling",
		"(no reason)",
	} {
		if !strings.Contains(got, part) {
			t.Errorf("-suppressions table missing %q:\n%s", part, got)
		}
	}
}

// TestTaintflowJSONGolden pins the machine-readable shape of an
// interprocedural finding: module-root-relative position plus the full
// witness path in the message.
func TestTaintflowJSONGolden(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-run", "taintflow", "dpml/internal/lint/testdata/src/taintflow"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	golden := filepath.Join("testdata", "taintflow.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("-json output differs from %s:\n got:\n%s\nwant:\n%s", golden, out.String(), want)
	}
}

// TestInterprocCleanTree pins the zero-new-suppressions guarantee for
// the interprocedural analyzers: the whole module — kernel, fabric,
// MPI, collectives, tooling — passes taintflow, lpown, and sendpath
// with no findings and no //dpml:allow escapes.
func TestInterprocCleanTree(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-run", "taintflow,lpown,sendpath"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; findings:\n%s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("interprocedural analyzers report findings on the real tree:\n%s", out.String())
	}
}

func TestUnknownAnalyzerExits2(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
