// Command dpml-bench regenerates the paper's figures and tables.
//
// Usage:
//
//	dpml-bench -figure fig4            # one figure at full scale
//	dpml-bench -figure all -quick      # the whole suite at test scale
//	dpml-bench -list                   # available figure ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dpml/internal/bench"
)

func main() {
	var (
		figure = flag.String("figure", "all", "figure id (see -list) or 'all'")
		quick  = flag.Bool("quick", false, "shrink job sizes for a fast run")
		iters  = flag.Int("iters", 0, "timed iterations per point (0 = default)")
		warmup = flag.Int("warmup", 0, "warmup iterations per point (0 = default)")
		list   = flag.Bool("list", false, "list figure ids and exit")
		out    = flag.String("o", "", "write output to file instead of stdout")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.FigureIDs(), "\n"))
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	opt := bench.Options{Quick: *quick, Iters: *iters, Warmup: *warmup}
	ids := []string{*figure}
	if *figure == "all" {
		ids = bench.FigureIDs()
	}
	for _, id := range ids {
		tb, err := bench.Figure(id, opt)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		tb.Render(w)
		fmt.Fprintln(w)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpml-bench:", err)
	os.Exit(1)
}
