// Command dpml-bench regenerates the paper's figures and tables.
//
// Usage:
//
//	dpml-bench -figure fig4            # one figure at full scale
//	dpml-bench -figure all -quick      # the whole suite at test scale
//	dpml-bench -figure all -quick -j 8 # same output, 8 host workers
//	dpml-bench -perf -quick            # simulator-throughput suite (JSON)
//	dpml-bench -list                   # available figure ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dpml/internal/bench"
	"dpml/internal/faults"
	"dpml/internal/mpi"
	"dpml/internal/sim"
	"dpml/internal/sweep"
)

func main() {
	var (
		figure    = flag.String("figure", "all", "figure id (see -list) or 'all'")
		quick     = flag.Bool("quick", false, "shrink job sizes for a fast run")
		iters     = flag.Int("iters", 0, "timed iterations per point (0 = default)")
		warmup    = flag.Int("warmup", 0, "warmup iterations per point (0 = default)")
		jobs      = flag.Int("j", 0, "parallel simulation jobs (0 = all cores, 1 = serial); output is identical for every value")
		list      = flag.Bool("list", false, "list figure ids and exit")
		perf      = flag.Bool("perf", false, "run the simulator-throughput suite and emit JSON (BENCH_sim.json schema)")
		perfOnly  = flag.String("perf-only", "", "with -perf: only run scenarios/figures whose name contains this substring")
		baseline  = flag.String("baseline", "", "with -perf: compare against a committed BENCH_sim.json and exit non-zero on >30% events/sec regression in the 64-rank scenarios")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		out       = flag.String("o", "", "write output to file instead of stdout")
		faultSpec = flag.String("faults", "", "inject a seeded fault plan into allreduce-latency figures: comma-separated classes with optional @intensity, e.g. 'straggler@0.25,link' or 'all@0.8' (empty = healthy fabric); also selects the classes the 'faults' figure sweeps")
		faultSeed = flag.Uint64("fault-seed", 0, "seed for fault-plan instantiation; different seeds fault different ranks, links, and windows")
		watchdog  = flag.Duration("watchdog", 0, "virtual-time deadline per simulated job (e.g. 500ms); a job not finished by then aborts with a diagnostic naming the blocked ranks (0 = off)")
		shards    = flag.Int("shards", 0, "kernel shards per simulated job (parallelize one run across threads; 0 = DPML_SHARDS env or 1); output is bit-identical for every value")
		netShards = flag.Int("netshards", 0, "water-fill workers for the network kernel's independent link components (0 = DPML_NET_SHARDS env or 1); output is bit-identical for every value")
	)
	flag.Parse()
	if *shards > 0 {
		mpi.SetDefaultShards(*shards)
	}
	if *netShards > 0 {
		mpi.SetDefaultNetShards(*netShards)
	}

	spec, err := faults.ParseSpec(*faultSpec)
	if err != nil {
		fatal(err)
	}
	if spec != nil {
		spec.Seed = *faultSeed
	}

	if *list {
		fmt.Println(strings.Join(bench.FigureIDs(), "\n"))
		return
	}

	stopProf, err := bench.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	opt := bench.Options{
		Quick: *quick, Iters: *iters, Warmup: *warmup, Jobs: *jobs,
		FaultSpec: spec, FaultSeed: *faultSeed, Watchdog: sim.Duration(*watchdog / time.Nanosecond),
	}
	if *perf {
		rep, err := bench.SimPerfFiltered(opt, *perfOnly)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(w); err != nil {
			fatal(err)
		}
		if *baseline != "" {
			base, err := bench.ReadPerfReport(*baseline)
			if err != nil {
				fatal(err)
			}
			notes, err := bench.CheckRegression(rep, base, 0.30)
			for _, n := range notes {
				fmt.Fprintln(os.Stderr, "dpml-bench: note:", n)
			}
			if err != nil {
				fatal(err)
			}
			fmt.Fprintln(os.Stderr, "dpml-bench: 64-rank throughput within 30% of", *baseline)
		}
		return
	}
	ids := []string{*figure}
	if *figure == "all" {
		ids = bench.FigureIDs()
	}
	// Figures fan out through the sweep pool (as do the series inside
	// each figure) and come back in request order, so the rendered output
	// is byte-identical whatever -j is.
	tables, err := sweep.Map(opt.Jobs, ids, func(_ int, id string) (*bench.Table, error) {
		tb, err := bench.Figure(id, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		return tb, nil
	})
	if err != nil {
		fatal(err)
	}
	for _, tb := range tables {
		tb.Render(w)
		fmt.Fprintln(w)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpml-bench:", err)
	os.Exit(1)
}
