// Command dpml-trace runs an allreduce workload with event tracing and
// prints a profile: per-kind totals, the busiest ranks, and (optionally)
// the raw event log as CSV, a per-phase breakdown, the critical path,
// a metrics-registry snapshot, or a Chrome trace_event JSON file
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Usage:
//
//	dpml-trace -cluster B -nodes 4 -ppn 8 -design dpml -leaders 8 -bytes 524288
//	dpml-trace -cluster A -lib proposed -bytes 256 -csv events.csv
//	dpml-trace -cluster A -design sharp-node-leader -phases -critpath -metrics
//	dpml-trace -cluster B -design dpml -chrome trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"dpml/internal/bench"
	"dpml/internal/core"
	"dpml/internal/mpi"
	"dpml/internal/topology"
	"dpml/internal/trace"
)

func main() {
	var (
		clusterName = flag.String("cluster", "B", "cluster: A, B, C, or D")
		nodes       = flag.Int("nodes", 4, "number of nodes")
		ppn         = flag.Int("ppn", 8, "processes per node")
		design      = flag.String("design", "dpml", "design (see dpml-osu)")
		leaders     = flag.Int("leaders", 4, "DPML leaders per node")
		chunks      = flag.Int("chunks", 4, "pipeline depth")
		lib         = flag.String("lib", "", "library selector instead of -design")
		bytes       = flag.Int("bytes", 64<<10, "message size")
		iters       = flag.Int("iters", 2, "allreduce iterations")
		csvPath     = flag.String("csv", "", "write the raw event log to this file")
		limit       = flag.Int("limit", 1<<20, "max events kept")
		chromePath  = flag.String("chrome", "", "write a Chrome trace_event JSON file (open in Perfetto)")
		phases      = flag.Bool("phases", false, "print the per-phase time breakdown")
		critpath    = flag.Bool("critpath", false, "print the critical path and per-phase slack")
		metricsFlag = flag.Bool("metrics", false, "print the metrics-registry snapshot")
		shards      = flag.Int("shards", 0, "kernel shards (parallelize the run across threads; 0 = DPML_SHARDS env or 1); trace output is bit-identical for every value")
		netShards   = flag.Int("netshards", 0, "water-fill workers for the network kernel's independent link components (0 = DPML_NET_SHARDS env or 1); trace output is bit-identical for every value")
	)
	flag.Parse()

	cl := topology.ByName(*clusterName)
	if cl == nil {
		fatal(fmt.Errorf("unknown cluster %q", *clusterName))
	}
	job, err := topology.NewJob(cl, *nodes, *ppn)
	if err != nil {
		fatal(err)
	}
	rec := trace.New(*limit)
	w := mpi.NewWorld(job, mpi.Config{Trace: rec, Shards: *shards, NetShards: *netShards})
	e := core.NewEngine(w)

	var choose bench.SpecChooser
	if *lib != "" {
		choose = bench.LibrarySpec(core.Library(*lib))
	} else {
		choose = bench.FixedSpec(core.Spec{
			Design:  core.Design(*design),
			Leaders: *leaders,
			Chunks:  *chunks,
		})
	}
	count := *bytes / 4
	if count < 1 {
		count = 1
	}
	spec := choose(e, count*4)
	err = w.Run(func(r *mpi.Rank) error {
		v := mpi.NewPhantom(mpi.Float32, count)
		for i := 0; i < *iters; i++ {
			if err := e.Allreduce(r, spec, mpi.Sum, v); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("workload: %d x allreduce(%d bytes) with %s on %s, %d nodes x %d ppn\n",
		*iters, count*4, spec, cl.Name, *nodes, *ppn)
	fmt.Printf("virtual time: %v\n", w.Now())
	rec.Summary(os.Stdout)
	// Fabric utilization over the run.
	elapsed := w.Now().Sub(0)
	var busiest string
	var peak float64
	for _, lr := range w.Net.Report() {
		if u := float64(lr.Bytes) / (lr.Capacity * elapsed.Seconds()); u > peak {
			peak, busiest = u, lr.Name
		}
	}
	if busiest != "" {
		fmt.Printf("busiest NIC link: %s at %.1f%% of capacity over the run\n", busiest, 100*peak)
	}
	for node, m := range w.Mem {
		lr := m.Report()
		if node == 0 {
			fmt.Printf("node 0 memory system: %d bytes moved, busy %v\n", lr.Bytes, lr.Busy)
		}
	}
	if *phases {
		fmt.Println()
		rec.WritePhaseReport(os.Stdout)
		if ar := rec.CollectiveArrivals(); ar.Ops > 0 {
			fmt.Printf("arrival skew: %d ops, spread max %v mean %v, imbalance max %.3f mean %.3f\n",
				ar.Ops, ar.MaxSpread, ar.MeanSpread, ar.MaxImbalance, ar.MeanImbalance)
		}
	}
	if *critpath {
		fmt.Println()
		rec.CriticalPath().Write(os.Stdout)
	}
	if *metricsFlag {
		fmt.Println()
		w.Metrics().WriteText(os.Stdout)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d events to %s\n", rec.Len(), *csvPath)
	}
	if *chromePath != "" {
		f, err := os.Create(*chromePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		nodeOf := func(rank int) int { return job.Place(rank).Node }
		if err := rec.WriteChrome(f, nodeOf); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d events to %s (open in Perfetto)\n", rec.Len(), *chromePath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpml-trace:", err)
	os.Exit(1)
}
