package dpml

import (
	"strings"
	"testing"
)

func TestNewSystemAndAllreduce(t *testing.T) {
	eng, err := NewSystem(ClusterB(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	err = eng.W.Run(func(r *Rank) error {
		v := NewVector(Float64, 100)
		v.Fill(float64(r.Rank() + 1))
		if err := eng.Allreduce(r, DPML(2), Sum, v); err != nil {
			return err
		}
		if v.At(0) != 36 { // sum 1..8
			t.Errorf("rank %d got %v, want 36", r.Rank(), v.At(0))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(ClusterA(), 100, 4); err == nil {
		t.Fatal("accepted too many nodes")
	}
	if _, err := NewSystem(ClusterA(), 4, 100); err == nil {
		t.Fatal("accepted too many ppn")
	}
}

func TestPublicClusters(t *testing.T) {
	if len(Clusters()) != 4 {
		t.Fatal("expected four paper clusters")
	}
	for _, name := range []string{"A", "B", "C", "D"} {
		if ClusterByName(name) == nil {
			t.Fatalf("ClusterByName(%q) = nil", name)
		}
	}
	if !ClusterA().Sharp.Available {
		t.Fatal("cluster A must expose SHArP")
	}
	sub := ClusterB().WithNodes(3)
	if sub.Nodes != 3 {
		t.Fatal("WithNodes broken through the facade")
	}
}

func TestPublicSpecsAndLibraries(t *testing.T) {
	if len(Libraries()) != 3 {
		t.Fatal("want three libraries")
	}
	if DPML(4).Leaders != 4 || DPMLPipelined(2, 8).Chunks != 8 {
		t.Fatal("spec constructors broken")
	}
	if HostBased().Leaders != 1 {
		t.Fatal("HostBased must be the single-leader hierarchy")
	}
	if Flat(AlgRing).FlatAlg != AlgRing {
		t.Fatal("Flat constructor broken")
	}
	if BestLeaders("B-Xeon-IB", 28, 1<<20) != 16 {
		t.Fatal("BestLeaders table changed unexpectedly at 1MB")
	}
}

func TestPublicCostModel(t *testing.T) {
	p := CostModelFor(ClusterB()).With(448, 16, 8, 64<<10)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// At 64KB on 448 procs the multi-leader design must win.
	if p.DPML() <= 0 || p.DPML() >= p.RecursiveDoubling() {
		t.Fatalf("model: DPML %g vs flat RD %g", p.DPML(), p.RecursiveDoubling())
	}
}

func TestPublicFigureRuns(t *testing.T) {
	tab, err := Figure("fig8a", BenchOptions{Quick: true, Iters: 2, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Series) != 3 {
		t.Fatalf("fig8a series = %d, want 3", len(tab.Series))
	}
	if !strings.Contains(tab.String(), "host-based") {
		t.Fatal("render missing host-based series")
	}
	if len(FigureIDs()) < 19 {
		t.Fatalf("only %d figures registered", len(FigureIDs()))
	}
}

func TestPublicHPCG(t *testing.T) {
	eng, err := NewSystem(ClusterA(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunHPCG(eng, HPCGConfig{Nx: 8, Ny: 8, Nz: 4, Iterations: 15, Real: true, Spec: HostBased()})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResidualDrop < 10 {
		t.Fatalf("residual drop %v", res.ResidualDrop)
	}
}

func TestPublicMiniAMR(t *testing.T) {
	eng, err := NewSystem(ClusterC(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMiniAMR(eng, MiniAMRConfig{BlocksPerRank: 4, BlockBytes: 512, Steps: 2, Library: LibProposed})
	if err != nil {
		t.Fatal(err)
	}
	if res.RefineTime <= 0 {
		t.Fatal("no refinement time recorded")
	}
}

func TestPublicUserOpAndPhantom(t *testing.T) {
	op := NewUserOp("avgmax", true, func(a, b float64) float64 {
		if b > a {
			return b
		}
		return a
	})
	eng, err := NewSystem(ClusterB(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	err = eng.W.Run(func(r *Rank) error {
		v := NewVector(Float64, 4)
		v.Fill(float64(r.Rank()))
		if err := eng.Allreduce(r, Flat(AlgRecursiveDoubling), op, v); err != nil {
			return err
		}
		if v.At(0) != 3 {
			t.Errorf("user op via facade got %v", v.At(0))
		}
		ph := NewPhantom(Float32, 1024)
		return eng.Allreduce(r, DPML(2), Sum, ph)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicMBW(t *testing.T) {
	thr, err := MultiPairThroughput(ClusterC(), MBWConfig{Pairs: 2, Window: 8, Iters: 1}, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if thr[0] <= 0 {
		t.Fatal("no throughput measured")
	}
}

func TestPublicTracing(t *testing.T) {
	rec := NewTraceRecorder(0)
	job, err := NewJob(ClusterB(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(job, WorldConfig{Trace: rec})
	eng := NewEngine(w)
	err = w.Run(func(r *Rank) error {
		v := NewPhantom(Float32, 1024)
		return eng.Allreduce(r, DPML(2), Sum, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no events recorded via public API")
	}
	seen := map[TraceKind]bool{}
	for _, e := range rec.Events() {
		seen[e.Kind] = true
	}
	for _, k := range []TraceKind{TraceSend, TraceRecv, TraceShmCopy, TraceCompute, TraceCollective} {
		if !seen[k] {
			t.Errorf("kind %s missing from trace", k)
		}
	}
}

func TestPublicSplitAndScan(t *testing.T) {
	eng, err := NewSystem(ClusterB(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	err = eng.W.Run(func(r *Rank) error {
		c := eng.W.CommWorld()
		me := c.RankOf(r)
		sub := c.Split(r, me%2, me)
		if sub.Size() != 2 {
			t.Errorf("split size %d", sub.Size())
		}
		v := NewVector(Float64, 1)
		v.Fill(float64(me + 1))
		r.Scan(c, Sum, v)
		want := float64((me + 1) * (me + 2) / 2)
		if v.At(0) != want {
			t.Errorf("scan rank %d = %v, want %v", me, v.At(0), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicDNN(t *testing.T) {
	eng, err := NewSystem(ClusterD(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDNN(eng, DNNConfig{
		Layers: []DNNLayer{{Name: "fc", Elems: 1 << 16}},
		Steps:  1, Library: LibProposed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommTime <= 0 {
		t.Fatal("no comm time recorded")
	}
}
